//! A minimal SVG document builder.
//!
//! Only the primitives the charts need: lines, polylines, rectangles,
//! circles, polygons, and text, each with a fixed attribute set. All text
//! content and attribute values are escaped, so arbitrary series names
//! (including `<`, `&`, quotes) render safely.

use std::fmt::Write as _;

/// Escape a string for use inside SVG text content or attribute values.
///
/// # Examples
///
/// ```
/// assert_eq!(tpu_plot::escape("p50 < p99 & more"), "p50 &lt; p99 &amp; more");
/// ```
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Horizontal text anchoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Text starts at the given x.
    Start,
    /// Text is centered on the given x.
    Middle,
    /// Text ends at the given x.
    End,
}

impl Anchor {
    fn as_svg(self) -> &'static str {
        match self {
            Anchor::Start => "start",
            Anchor::Middle => "middle",
            Anchor::End => "end",
        }
    }
}

/// An SVG document under construction.
///
/// Coordinates are in user units (pixels at 1:1). The document emits a
/// white background rectangle so charts are readable in dark-mode
/// viewers.
///
/// # Examples
///
/// ```
/// use tpu_plot::{Anchor, SvgDocument};
///
/// let mut doc = SvgDocument::new(200.0, 100.0);
/// doc.line(0.0, 50.0, 200.0, 50.0, "#000000", 1.0);
/// doc.text(100.0, 45.0, "ridge point", 10.0, Anchor::Middle, "#333333");
/// let svg = doc.finish();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("ridge point"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgDocument {
    width: f64,
    height: f64,
    body: String,
    elements: usize,
}

impl SvgDocument {
    /// Start a document of the given pixel size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "width must be positive");
        assert!(
            height > 0.0 && height.is_finite(),
            "height must be positive"
        );
        let mut doc = SvgDocument {
            width,
            height,
            body: String::new(),
            elements: 0,
        };
        doc.rect(0.0, 0.0, width, height, "#ffffff", None);
        doc
    }

    /// Number of elements emitted so far (excluding the background).
    pub fn element_count(&self) -> usize {
        self.elements.saturating_sub(1)
    }

    fn coord(v: f64) -> String {
        // Two decimals keeps files small and diffs stable.
        format!("{v:.2}")
    }

    /// A straight line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="{}"/>"#,
            Self::coord(x1),
            Self::coord(y1),
            Self::coord(x2),
            Self::coord(y2),
            escape(stroke),
            width
        );
        self.elements += 1;
    }

    /// A dashed straight line segment (used for gridlines).
    pub fn dashed_line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="0.5" stroke-dasharray="3 3"/>"#,
            Self::coord(x1),
            Self::coord(y1),
            Self::coord(x2),
            Self::coord(y2),
            escape(stroke),
        );
        self.elements += 1;
    }

    /// An open polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{},{}", Self::coord(*x), Self::coord(*y)))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{}"/>"#,
            pts.join(" "),
            escape(stroke),
            width
        );
        self.elements += 1;
    }

    /// A filled rectangle, optionally stroked.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = match stroke {
            Some(s) => format!(r#" stroke="{}" stroke-width="0.75""#, escape(s)),
            None => String::new(),
        };
        let _ = writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}"{}/>"#,
            Self::coord(x),
            Self::coord(y),
            Self::coord(w.max(0.0)),
            Self::coord(h.max(0.0)),
            escape(fill),
            stroke_attr
        );
        self.elements += 1;
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{}" fill="{}"/>"#,
            Self::coord(cx),
            Self::coord(cy),
            r,
            escape(fill)
        );
        self.elements += 1;
    }

    /// A filled closed polygon.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str) {
        if points.len() < 3 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{},{}", Self::coord(*x), Self::coord(*y)))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polygon points="{}" fill="{}"/>"#,
            pts.join(" "),
            escape(fill)
        );
        self.elements += 1;
    }

    /// A text label. `size` is the font size in pixels.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: Anchor, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{}" y="{}" font-size="{}" font-family="sans-serif" text-anchor="{}" fill="{}">{}</text>"#,
            Self::coord(x),
            Self::coord(y),
            size,
            anchor.as_svg(),
            escape(fill),
            escape(content)
        );
        self.elements += 1;
    }

    /// A text label rotated 90 degrees counterclockwise about its anchor
    /// (for y-axis titles).
    pub fn vertical_text(&mut self, x: f64, y: f64, content: &str, size: f64) {
        let _ = writeln!(
            self.body,
            r##"<text x="{x}" y="{y}" font-size="{size}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x} {y})" fill="#333333">{}</text>"##,
            escape(content)
        );
        self.elements += 1;
    }

    /// Finish the document, returning the complete SVG text.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_markup_characters() {
        assert_eq!(escape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_has_header_viewbox_and_background() {
        let doc = SvgDocument::new(320.0, 200.0);
        let s = doc.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.contains("viewBox=\"0 0 320 200\""));
        assert!(s.contains("#ffffff"));
        assert!(s.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn elements_are_counted_excluding_background() {
        let mut doc = SvgDocument::new(100.0, 100.0);
        assert_eq!(doc.element_count(), 0);
        doc.line(0.0, 0.0, 1.0, 1.0, "#000", 1.0);
        doc.circle(5.0, 5.0, 2.0, "red");
        doc.text(0.0, 0.0, "hi", 10.0, Anchor::Start, "#333");
        assert_eq!(doc.element_count(), 3);
    }

    #[test]
    fn text_content_is_escaped() {
        let mut doc = SvgDocument::new(100.0, 100.0);
        doc.text(0.0, 0.0, "a<b>&c", 10.0, Anchor::Middle, "#000");
        let s = doc.finish();
        assert!(s.contains("a&lt;b&gt;&amp;c"));
        assert!(!s.contains("a<b>"));
    }

    #[test]
    fn degenerate_polyline_and_polygon_are_skipped() {
        let mut doc = SvgDocument::new(100.0, 100.0);
        doc.polyline(&[(1.0, 1.0)], "#000", 1.0);
        doc.polygon(&[(1.0, 1.0), (2.0, 2.0)], "#000");
        assert_eq!(doc.element_count(), 0);
    }

    #[test]
    fn tags_are_balanced() {
        let mut doc = SvgDocument::new(100.0, 100.0);
        doc.polyline(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)], "blue", 1.5);
        doc.rect(1.0, 1.0, 5.0, 5.0, "green", Some("black"));
        doc.vertical_text(10.0, 50.0, "TOPS", 11.0);
        let s = doc.finish();
        let opens = s.matches('<').count();
        let closes = s.matches('>').count();
        assert_eq!(opens, closes);
        // Every element is self-closing or closed; no stray unescaped '&'.
        for chunk in s.split('&').skip(1) {
            assert!(
                chunk.starts_with("amp;")
                    || chunk.starts_with("lt;")
                    || chunk.starts_with("gt;")
                    || chunk.starts_with("quot;")
                    || chunk.starts_with("apos;"),
                "unescaped ampersand near: {chunk:.20}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = SvgDocument::new(0.0, 100.0);
    }
}
