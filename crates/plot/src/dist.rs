//! Latency distribution charts: empirical CDFs and log-scale tail
//! (exceedance) curves.
//!
//! `tpu_analyze` renders per-tenant latency distributions with these
//! helpers: the CDF answers "where is the body", the tail curve puts
//! `P(latency > x)` on a log axis so the slowest 1% — where SLO budgets
//! are won and lost — stops hiding in the top pixel of a linear plot.
//! Both take plain sample slices, keeping the plot crate free of
//! telemetry types.

use crate::chart::{Chart, Series};
use crate::error::PlotError;
use crate::scale::Scale;

fn sorted_finite(name: &str, values: &[f64]) -> Result<Vec<f64>, PlotError> {
    if values.iter().any(|v| !v.is_finite()) {
        return Err(PlotError::NonFinitePoint {
            series: name.to_string(),
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(sorted)
}

/// Render named sample sets as empirical CDF curves on linear axes:
/// each series is sorted and drawn as `(value, (i + 1) / n)`. Empty
/// series are skipped, like [`crate::timeseries`].
///
/// # Errors
///
/// Returns [`PlotError`] when no series has any samples or a sample is
/// non-finite.
///
/// # Examples
///
/// ```
/// let svg = tpu_plot::cdf(
///     "latency CDF",
///     "latency (ms)",
///     &[("MLP0".to_string(), vec![1.0, 2.0, 2.5, 9.0])],
/// )?;
/// assert!(svg.starts_with("<svg"));
/// # Ok::<(), tpu_plot::PlotError>(())
/// ```
pub fn cdf(title: &str, x_label: &str, series: &[(String, Vec<f64>)]) -> Result<String, PlotError> {
    let mut chart = Chart::new(title)
        .x_axis(x_label, Scale::Linear)
        .y_axis("fraction of requests", Scale::Linear);
    for (name, values) in series {
        if values.is_empty() {
            continue;
        }
        let sorted = sorted_finite(name, values)?;
        let n = sorted.len() as f64;
        let points = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect();
        chart = chart.series(Series::line(name.clone(), points));
    }
    chart.render()
}

/// Render named sample sets as tail (exceedance) curves: each series is
/// sorted and drawn as `(value, (n - i) / n)` — the fraction of samples
/// at or above the value — on a base-10 log y axis, so each decade of
/// the tail (p90, p99, p99.9) gets equal vertical room. Empty series
/// are skipped.
///
/// # Errors
///
/// Returns [`PlotError`] when no series has any samples or a sample is
/// non-finite.
///
/// # Examples
///
/// ```
/// let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 0.1).collect();
/// let svg = tpu_plot::tail_curve(
///     "latency tail",
///     "latency (ms)",
///     &[("MLP0".to_string(), samples)],
/// )?;
/// assert!(svg.starts_with("<svg"));
/// # Ok::<(), tpu_plot::PlotError>(())
/// ```
pub fn tail_curve(
    title: &str,
    x_label: &str,
    series: &[(String, Vec<f64>)],
) -> Result<String, PlotError> {
    let mut chart = Chart::new(title)
        .x_axis(x_label, Scale::Linear)
        .y_axis("P(latency > x)", Scale::Log10);
    for (name, values) in series {
        if values.is_empty() {
            continue;
        }
        let sorted = sorted_finite(name, values)?;
        let n = sorted.len() as f64;
        // (n - i) / n >= 1/n stays strictly positive, so the log axis
        // is always satisfiable.
        let points = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (n - i as f64) / n))
            .collect();
        chart = chart.series(Series::line(name.clone(), points));
    }
    chart.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (1..=n).map(|i| i as f64 * 0.5).collect()
    }

    #[test]
    fn cdf_renders_and_is_deterministic() {
        let series = [
            ("MLP0".to_string(), ramp(50)),
            ("empty".to_string(), Vec::new()),
            ("LSTM0".to_string(), ramp(10)),
        ];
        let a = cdf("latency CDF", "latency (ms)", &series).expect("renders");
        let b = cdf("latency CDF", "latency (ms)", &series).expect("renders");
        assert_eq!(a, b);
        assert!(a.starts_with("<svg") && a.contains("MLP0") && a.contains("LSTM0"));
        assert!(a.contains("fraction of requests"));
    }

    #[test]
    fn tail_curve_uses_a_log_axis_and_positive_fractions() {
        let svg =
            tail_curve("tail", "latency (ms)", &[("t".to_string(), ramp(1000))]).expect("renders");
        assert!(svg.contains("P(latency &gt; x)"));
        // Log decade ticks from 1/n = 0.001 up to 1 appear as labels.
        assert!(svg.contains(">0.001<") && svg.contains(">1<"));
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let shuffled = vec![3.0, 1.0, 2.0];
        let ordered = vec![1.0, 2.0, 3.0];
        let a = cdf("c", "x", &[("s".to_string(), shuffled)]).expect("renders");
        let b = cdf("c", "x", &[("s".to_string(), ordered)]).expect("renders");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_non_finite_inputs_error() {
        assert!(matches!(cdf("c", "x", &[]), Err(PlotError::NoData)));
        assert!(matches!(
            tail_curve("t", "x", &[("bad".to_string(), vec![1.0, f64::NAN])]),
            Err(PlotError::NonFinitePoint { .. })
        ));
    }
}
