//! The monitor's contracts, driven through the real fleet engine:
//!
//! * **streaming ≡ batch** — the online incident set equals an offline
//!   [`FleetMonitor::replay`] from the metrics + request-log artifacts,
//!   bit for bit, for the seeded scenario and across arbitrary seeds;
//! * **zero perturbation** — a monitored run's fleet report is
//!   byte-identical to the bare run's;
//! * **determinism** — the `tpu-incidents` artifact text is byte-stable
//!   across same-seed runs;
//! * **ground truth** — the injected rack crash in `rack-outage` is
//!   recalled and blamed on rack 0, `fleet-steady` stays silent, and
//!   the `retry-storm` blind run pages on the storm.

use proptest::prelude::*;
use tpu_cluster::{scenario_by_name, FleetRun};
use tpu_core::TpuConfig;
use tpu_monitor::{FleetMonitor, IncidentKind, MonitorConfig};
use tpu_telemetry::{MetricsConfig, MetricsRecorder, RequestLog, RunTelemetry};

const INTERVAL_MS: f64 = 0.05;

/// Run a scenario with metrics + request log + monitor attached and
/// return, per run, the label, the fleet run, and the instruments.
fn run_monitored(
    name: &str,
    scale: f64,
    seed: u64,
) -> Vec<(
    String,
    FleetRun,
    FleetMonitor,
    serde_json::Value,
    RequestLog,
)> {
    let cfg = TpuConfig::paper();
    let s = scenario_by_name(name)
        .expect("known scenario")
        .with_seed(seed)
        .scale_requests(scale);
    let mut tels: Vec<RunTelemetry> = s
        .runs
        .iter()
        .map(|_| {
            let mut mon_cfg = MonitorConfig::with_interval(INTERVAL_MS);
            if let Some(t) = s.topology {
                mon_cfg = mon_cfg.with_topology(t);
            }
            let mut tel = RunTelemetry::off();
            tel.metrics = Some(MetricsRecorder::new(&MetricsConfig {
                interval_ms: INTERVAL_MS,
                ring_cap: 1 << 20,
            }));
            tel.requests = Some(RequestLog::new());
            tel.monitor = Some(Box::new(FleetMonitor::new(mon_cfg)));
            tel
        })
        .collect();
    let runs = s.execute_telemetry(&cfg, &mut tels);
    runs.into_iter()
        .zip(tels)
        .map(|((label, run), tel)| {
            let mon = *tel
                .monitor
                .expect("monitor attached")
                .into_any()
                .downcast::<FleetMonitor>()
                .expect("a FleetMonitor");
            let metrics = tel.metrics.expect("metrics attached").to_json();
            let log = tel.requests.expect("request log attached");
            (label, run, mon, metrics, log)
        })
        .collect()
}

#[test]
fn online_incidents_replay_bit_identical_from_artifacts() {
    for (label, _, mon, metrics, log) in run_monitored("rack-outage", 0.1, 42) {
        let streaming = mon.report();
        assert!(
            !streaming.incidents.is_empty(),
            "{label}: the scaled rack-outage run still detects incidents"
        );
        let replayed =
            FleetMonitor::replay(mon.config().clone(), &metrics, &log).expect("replay succeeds");
        assert_eq!(replayed.folds(), mon.folds(), "{label}: fold counts");
        assert_eq!(replayed.report(), streaming, "{label}: incident sets");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// streaming ≡ batch holds for arbitrary seeds, not just the
    /// scenario default.
    #[test]
    fn replay_matches_streaming_for_any_seed(seed in 1u64..10_000) {
        for (label, _, mon, metrics, log) in run_monitored("rack-outage", 0.05, seed) {
            let replayed = FleetMonitor::replay(mon.config().clone(), &metrics, &log)
                .expect("replay succeeds");
            prop_assert_eq!(replayed.report(), mon.report(), "{} seed {}", label, seed);
        }
    }
}

#[test]
fn monitored_run_report_is_byte_identical_to_bare() {
    let cfg = TpuConfig::paper();
    let bare = scenario_by_name("rack-outage")
        .expect("known scenario")
        .with_seed(42)
        .scale_requests(0.1)
        .execute(&cfg);
    let monitored = run_monitored("rack-outage", 0.1, 42);
    assert_eq!(bare.len(), monitored.len());
    for ((label, bare_run), (_, mon_run, ..)) in bare.iter().zip(&monitored) {
        assert_eq!(bare_run.report, mon_run.report, "{label}: reports");
        assert_eq!(
            bare_run.report.to_json().to_string(),
            mon_run.report.to_json().to_string(),
            "{label}: rendered report bytes"
        );
    }
}

#[test]
fn incident_artifact_is_byte_stable_across_same_seed_runs() {
    let a = run_monitored("rack-outage", 0.1, 7);
    let b = run_monitored("rack-outage", 0.1, 7);
    for ((label, _, ma, ..), (_, _, mb, ..)) in a.iter().zip(&b) {
        assert_eq!(ma.report().render(), mb.report().render(), "{label}");
    }
}

#[test]
fn rack_outage_crash_is_recalled_and_blamed_on_rack0() {
    // The scenario injects a rack 0 crash over [0.30, 0.70] ms; the
    // monitor must open a rack0-blamed page overlapping that window
    // (100% recall on the injected rack outage) and must not blame any
    // host outside the two injected failure domains.
    for (label, _, mon, _, _) in run_monitored("rack-outage", 0.2, 42) {
        let report = mon.report();
        let racks: Vec<_> = report
            .incidents
            .iter()
            .filter(|i| i.kind == IncidentKind::Outage && i.subject == "rack0")
            .collect();
        assert_eq!(racks.len(), 1, "{label}: one rack0 incident: {report:?}");
        let inc = racks[0];
        assert!(inc.overlaps(0.30, 0.70), "{label}: {inc:?}");
        assert!(
            inc.opened_ms >= 0.30 && inc.opened_ms <= 0.60,
            "{label}: opened at {}",
            inc.opened_ms
        );
        let resolved = inc.resolved_ms.expect("recovery resolves the incident");
        assert!(
            (0.70..=1.00).contains(&resolved),
            "{label}: resolved at {resolved}"
        );
        assert_eq!(inc.blame.rack, Some(0), "{label}");
        // Precision: every outage incident blames hosts wholly inside
        // one of the two injected domains (rack 0 crash, rack 1
        // partition).
        for i in &report.incidents {
            if i.kind != IncidentKind::Outage {
                continue;
            }
            let in_rack0 = i.blame.hosts.iter().all(|&h| h < 4);
            let in_rack1 = i.blame.hosts.iter().all(|&h| (4..8).contains(&h));
            assert!(in_rack0 || in_rack1, "{label}: stray blame in {i:?}");
        }
    }
}

#[test]
fn fleet_steady_raises_no_false_alarms() {
    for (label, _, mon, _, _) in run_monitored("fleet-steady", 0.1, 42) {
        let report = mon.report();
        assert!(
            report.incidents.is_empty(),
            "{label}: healthy fleet must stay silent: {report:?}"
        );
    }
}

#[test]
fn retry_storm_blind_run_pages_on_the_storm() {
    let runs = run_monitored("retry-storm", 0.1, 42);
    let (_, _, mon, _, _) = runs
        .iter()
        .find(|(label, ..)| label == "blind")
        .expect("blind run present");
    let report = mon.report();
    assert!(
        report
            .incidents
            .iter()
            .any(|i| i.kind == IncidentKind::RetryStorm),
        "blind run must raise a retry-storm incident: {report:?}"
    );
    // Both staggered rack outages ([1.0, 2.5] and [3.0, 4.5]) recall.
    for (rack, from, until) in [("rack0", 1.0, 2.5), ("rack1", 3.0, 4.5)] {
        assert!(
            report
                .incidents
                .iter()
                .any(|i| i.subject == rack && i.overlaps(from, until)),
            "missing {rack} outage in {report:?}"
        );
    }
}
