//! Offline replay: rebuild the online incident set from the metrics
//! and request-log artifacts, bit-identically (streaming ≡ batch).
//!
//! The reconstruction leans on three exact correspondences:
//!
//! * **Stamps.** The monitor shares the metrics recorder's cadence
//!   arithmetic bit for bit, so when both ran on the same interval the
//!   monitor's fold stamps are exactly the gauge-point timestamps in
//!   the artifact (percentile series are excluded — their final
//!   end-of-run flush lands off-cadence).
//! * **Fold attribution.** A completion ending at `e` was observed
//!   after every fold whose trigger `stamp + Δ ≤ e` had fired and
//!   before the next one, so it belongs to fold `1 + |{s : s+Δ ≤ e}|`
//!   (the first fold closes at the first event pop, before any
//!   completion is processed). `s + Δ` is the same f64 expression the
//!   engine compares against, so the bucketing is exact. Records past
//!   the last fold are discarded, matching the streaming monitor's
//!   `finish`, which never closes a partial fold.
//! * **Arithmetic.** `latency = end - arrived` and
//!   `service = end - dispatch - swap` are the request log's own
//!   accessors — the identical expressions the engine feeds the
//!   streaming monitor — and per-`(tenant, host, die)` the log's
//!   record order equals the die's completion order, so every f64
//!   accumulation runs in the same sequence.

use crate::monitor::FleetMonitor;
use crate::MonitorConfig;
use serde_json::Value;
use tpu_telemetry::{MonitorSink, RequestLog};

impl FleetMonitor {
    /// Recompute the incident set offline from a parsed `tpu-metrics`
    /// artifact and the run's [`RequestLog`]. The returned monitor is
    /// finished; its [`report`](FleetMonitor::report) equals the
    /// streaming one's bitwise when `cfg` matches the online run.
    ///
    /// # Errors
    ///
    /// A message when the artifact is malformed, its cadence differs
    /// from `cfg.interval_ms`, or any series dropped points to the
    /// ring bound (a truncated artifact cannot replay faithfully).
    pub fn replay(
        cfg: MonitorConfig,
        metrics: &Value,
        log: &RequestLog,
    ) -> Result<FleetMonitor, String> {
        let Value::Object(doc) = metrics else {
            return Err("metrics artifact is not a JSON object".to_string());
        };
        match doc.get("interval_ms") {
            Some(Value::Number(n)) if n.to_bits() == cfg.interval_ms.to_bits() => {}
            Some(Value::Number(n)) => {
                return Err(format!(
                    "metrics cadence {n} differs from monitor cadence {}",
                    cfg.interval_ms
                ));
            }
            _ => return Err("metrics artifact has no interval_ms".to_string()),
        }
        let Some(Value::Object(series)) = doc.get("series") else {
            return Err("metrics artifact has no series map".to_string());
        };
        // Gauge series only: percentile series flush off-cadence at end
        // of run and the streaming monitor never sees them.
        let mut gauges: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
        for (name, body) in series {
            match body {
                Value::Object(b) => {
                    match b.get("dropped") {
                        Some(Value::Number(d)) if *d == 0.0 => {}
                        _ => {
                            return Err(format!(
                                "series {name:?} dropped points to the ring bound; \
                                 replay needs a complete artifact (raise --metrics-ring)"
                            ));
                        }
                    }
                    if name.ends_with(".p50") || name.ends_with(".p99") {
                        continue;
                    }
                    let Some(Value::Array(points)) = b.get("points") else {
                        return Err(format!("series {name:?} has no points"));
                    };
                    let mut pts = Vec::with_capacity(points.len());
                    for p in points {
                        match p {
                            Value::Array(tv) if tv.len() == 2 => match (&tv[0], &tv[1]) {
                                (Value::Number(t), Value::Number(v)) => pts.push((*t, *v)),
                                _ => return Err(format!("series {name:?}: non-numeric point")),
                            },
                            _ => return Err(format!("series {name:?}: malformed point")),
                        }
                    }
                    gauges.push((name, pts));
                }
                _ => return Err(format!("series {name:?} is not an object")),
            }
        }
        // Fold stamps: the union of gauge timestamps, ascending.
        let mut stamps: Vec<f64> = gauges
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|&(t, _)| t))
            .collect();
        stamps.sort_by(|a, b| a.partial_cmp(b).expect("finite stamps"));
        stamps.dedup_by(|a, b| a.to_bits() == b.to_bits());

        // Bucket request records by fold (see module docs); trailing
        // records past the last fold are dropped on both paths.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); stamps.len()];
        for (i, r) in log.records().iter().enumerate() {
            let fired = stamps.partition_point(|&s| s + cfg.interval_ms <= r.end_ms);
            if let Some(bucket) = buckets.get_mut(1 + fired) {
                bucket.push(i);
            }
        }

        let mut mon = FleetMonitor::new(cfg);
        let mut cursors = vec![0usize; gauges.len()];
        for (fold, &stamp) in stamps.iter().enumerate() {
            for (gi, (name, pts)) in gauges.iter().enumerate() {
                let c = &mut cursors[gi];
                while *c < pts.len() && pts[*c].0 < stamp {
                    *c += 1;
                }
                if *c < pts.len() && pts[*c].0.to_bits() == stamp.to_bits() {
                    mon.record(name, pts[*c].1);
                    *c += 1;
                }
            }
            for &i in &buckets[fold] {
                let r = &log.records()[i];
                let tenant = log.tenant_name(r.tenant);
                let slo = log.tenant_slo_ms(r.tenant);
                mon.observe_latency(tenant, r.latency_ms(), slo);
                mon.observe_service(tenant, r.host as usize, r.die as usize, r.service_ms(), 1);
            }
            mon.close_sample(stamp);
        }
        mon.finish();
        Ok(mon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic metrics artifact: `(name, points, dropped)` per
    /// series.
    type SeriesSpec<'a> = (&'a str, &'a [(f64, f64)], f64);

    fn metrics_doc(interval: f64, series: &[SeriesSpec]) -> Value {
        Value::object([
            ("interval_ms".to_string(), Value::Number(interval)),
            (
                "series".to_string(),
                Value::object(series.iter().map(|(name, pts, dropped)| {
                    (
                        name.to_string(),
                        Value::object([
                            ("dropped".to_string(), Value::Number(*dropped)),
                            (
                                "points".to_string(),
                                Value::Array(
                                    pts.iter()
                                        .map(|&(t, v)| {
                                            Value::Array(vec![Value::Number(t), Value::Number(v)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })),
            ),
        ])
    }

    #[test]
    fn replay_rejects_cadence_mismatch_and_truncation() {
        let log = RequestLog::new();
        let doc = metrics_doc(1.0, &[("busy/host0", &[(0.0, 0.0)], 0.0)]);
        assert!(
            FleetMonitor::replay(MonitorConfig::with_interval(0.5), &doc, &log)
                .unwrap_err()
                .contains("cadence")
        );
        let doc = metrics_doc(1.0, &[("busy/host0", &[(0.0, 0.0)], 3.0)]);
        assert!(
            FleetMonitor::replay(MonitorConfig::with_interval(1.0), &doc, &log)
                .unwrap_err()
                .contains("dropped")
        );
        assert!(
            FleetMonitor::replay(MonitorConfig::with_interval(1.0), &Value::Null, &log).is_err()
        );
    }

    #[test]
    fn replay_matches_a_hand_driven_streaming_monitor() {
        // Stream: gauges at stamps 0,1,2,3; one batch completing at
        // t=1.4 (observed in the fold closing at stamp 2).
        let cfg = || MonitorConfig::with_interval(1.0);
        let mut streaming = FleetMonitor::new(cfg());
        for (fold, stamp) in [0.0, 1.0, 2.0, 3.0].into_iter().enumerate() {
            streaming.record("busy/host0", fold as f64 * 2.0);
            streaming.record("outstanding/A", 5.0);
            if fold == 2 {
                streaming.observe_latency("A", 1.4 - 0.2, 7.0);
                streaming.observe_service("A", 0, 1, 1.4 - 0.5 - 0.1, 1);
            }
            streaming.close_sample(stamp);
        }
        streaming.finish();

        let doc = metrics_doc(
            1.0,
            &[
                (
                    "busy/host0",
                    &[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 6.0)],
                    0.0,
                ),
                (
                    "outstanding/A",
                    &[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0), (3.0, 5.0)],
                    0.0,
                ),
                // Percentile series with an off-cadence final flush
                // must not create a phantom fold.
                ("latency/A.p99", &[(2.0, 1.2), (3.7, 1.3)], 0.0),
            ],
        );
        let mut log = RequestLog::new();
        let mut probe = tpu_telemetry::RequestProbe::new(0);
        probe.batch_complete(1, "A", 7.0, 0.5, 0.1, 1.4, &[0.2]);
        log.absorb(probe);

        let replayed = FleetMonitor::replay(cfg(), &doc, &log).expect("replay");
        assert_eq!(replayed.folds(), 4);
        assert_eq!(replayed.report(), streaming.report());
    }
}
