//! The incident timeline: structured open/ack/resolve records folded
//! from alert edges, exported as `tpu-incidents` v1 JSON.

use serde_json::Value;

/// What kind of condition the incident tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentKind {
    /// A tenant burning SLO error budget past both window thresholds.
    Burn,
    /// A host / rack / power-domain doing no work while demand queues.
    Outage,
    /// A die serving far slower than its tenant's peer dies.
    Straggler,
    /// The fleet's retry rate spiking past threshold.
    RetryStorm,
}

impl IncidentKind {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            IncidentKind::Burn => "slo-burn",
            IncidentKind::Outage => "outage",
            IncidentKind::Straggler => "straggler",
            IncidentKind::RetryStorm => "retry-storm",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "slo-burn" => Some(IncidentKind::Burn),
            "outage" => Some(IncidentKind::Outage),
            "straggler" => Some(IncidentKind::Straggler),
            "retry-storm" => Some(IncidentKind::RetryStorm),
            _ => None,
        }
    }
}

/// How loud the incident is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a ticket: degraded but bounded.
    Warn,
    /// Worth waking someone: a whole failure domain or a burning SLO.
    Page,
}

impl Severity {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Page => "page",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "warn" => Some(Severity::Warn),
            "page" => Some(Severity::Page),
            _ => None,
        }
    }
}

/// What the incident points at.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Blame {
    /// Hosts implicated (empty for tenant-scoped incidents).
    pub hosts: Vec<usize>,
    /// The blamed rack, when the topology resolves one.
    pub rack: Option<usize>,
    /// The blamed power domain, when the topology resolves one.
    pub domain: Option<usize>,
    /// The tenant, for SLO-burn (and the dominant contributor for a
    /// retry storm).
    pub tenant: Option<String>,
    /// Set when this incident was absorbed by a wider one (host outage
    /// folded into its rack's incident).
    pub merged_into: Option<u64>,
}

/// One incident: a contiguous stretch of an alert being active, with
/// open/ack/resolve edges stamped at cadence fold times.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// 1-based id in open order.
    pub id: u64,
    /// Detector family.
    pub kind: IncidentKind,
    /// Human-readable subject (`rack0`, `host6/die1`, `cell000`, …).
    pub subject: String,
    /// Severity assigned at open.
    pub severity: Severity,
    /// Fold stamp at which the alert opened, ms.
    pub opened_ms: f64,
    /// Fold stamp at which the incident auto-acked (stayed active
    /// `ack_folds` folds), if it did.
    pub acked_ms: Option<f64>,
    /// Fold stamp at which the alert resolved; `None` if still open at
    /// end of run.
    pub resolved_ms: Option<f64>,
    /// Peak detector magnitude while open (burn rate, z-score, flat
    /// folds, retries/ms).
    pub peak: f64,
    /// What the incident points at.
    pub blame: Blame,
}

impl Incident {
    /// True when the incident never resolved.
    pub fn open_at_end(&self) -> bool {
        self.resolved_ms.is_none()
    }

    /// True when `[self.opened_ms, resolve-or-end]` overlaps
    /// `[from_ms, until_ms]`.
    pub fn overlaps(&self, from_ms: f64, until_ms: f64) -> bool {
        let end = self.resolved_ms.unwrap_or(f64::INFINITY);
        self.opened_ms <= until_ms && end >= from_ms
    }

    fn to_json(&self) -> Value {
        let opt_num = |v: Option<f64>| v.map(Value::Number).unwrap_or(Value::Null);
        let opt_idx = |v: Option<usize>| v.map(|i| Value::Number(i as f64)).unwrap_or(Value::Null);
        Value::object([
            ("id".to_string(), Value::Number(self.id as f64)),
            (
                "kind".to_string(),
                Value::String(self.kind.as_str().to_string()),
            ),
            ("subject".to_string(), Value::String(self.subject.clone())),
            (
                "severity".to_string(),
                Value::String(self.severity.as_str().to_string()),
            ),
            ("opened_ms".to_string(), Value::Number(self.opened_ms)),
            ("acked_ms".to_string(), opt_num(self.acked_ms)),
            ("resolved_ms".to_string(), opt_num(self.resolved_ms)),
            ("open_at_end".to_string(), Value::Bool(self.open_at_end())),
            ("peak".to_string(), Value::Number(self.peak)),
            (
                "blame".to_string(),
                Value::object([
                    (
                        "hosts".to_string(),
                        Value::Array(
                            self.blame
                                .hosts
                                .iter()
                                .map(|&h| Value::Number(h as f64))
                                .collect(),
                        ),
                    ),
                    ("rack".to_string(), opt_idx(self.blame.rack)),
                    ("domain".to_string(), opt_idx(self.blame.domain)),
                    (
                        "tenant".to_string(),
                        self.blame
                            .tenant
                            .clone()
                            .map(Value::String)
                            .unwrap_or(Value::Null),
                    ),
                    (
                        "merged_into".to_string(),
                        self.blame
                            .merged_into
                            .map(|i| Value::Number(i as f64))
                            .unwrap_or(Value::Null),
                    ),
                ]),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Incident, String> {
        let field = |key: &str| -> Result<&Value, String> {
            match v {
                Value::Object(m) => m.get(key).ok_or(format!("incident missing {key:?}")),
                _ => Err("incident is not an object".to_string()),
            }
        };
        let num = |key: &str| -> Result<f64, String> {
            match field(key)? {
                Value::Number(n) => Ok(*n),
                _ => Err(format!("incident field {key:?} is not a number")),
            }
        };
        let opt_num = |key: &str| -> Result<Option<f64>, String> {
            match field(key)? {
                Value::Null => Ok(None),
                Value::Number(n) => Ok(Some(*n)),
                _ => Err(format!("incident field {key:?} is not a number or null")),
            }
        };
        let text = |key: &str| -> Result<&str, String> {
            match field(key)? {
                Value::String(s) => Ok(s.as_str()),
                _ => Err(format!("incident field {key:?} is not a string")),
            }
        };
        let blame = field("blame")?;
        let bfield = |key: &str| -> Result<&Value, String> {
            match blame {
                Value::Object(m) => m.get(key).ok_or(format!("blame missing {key:?}")),
                _ => Err("incident blame is not an object".to_string()),
            }
        };
        let opt_idx = |key: &str| -> Result<Option<usize>, String> {
            match bfield(key)? {
                Value::Null => Ok(None),
                Value::Number(n) => Ok(Some(*n as usize)),
                _ => Err(format!("blame field {key:?} is not a number or null")),
            }
        };
        let hosts = match bfield("hosts")? {
            Value::Array(a) => a
                .iter()
                .map(|h| match h {
                    Value::Number(n) => Ok(*n as usize),
                    _ => Err("blame hosts entry is not a number".to_string()),
                })
                .collect::<Result<Vec<usize>, String>>()?,
            _ => return Err("blame hosts is not an array".to_string()),
        };
        Ok(Incident {
            id: num("id")? as u64,
            kind: IncidentKind::parse(text("kind")?)
                .ok_or_else(|| format!("unknown incident kind {:?}", text("kind").unwrap()))?,
            subject: text("subject")?.to_string(),
            severity: Severity::parse(text("severity")?)
                .ok_or_else(|| format!("unknown severity {:?}", text("severity").unwrap()))?,
            opened_ms: num("opened_ms")?,
            acked_ms: opt_num("acked_ms")?,
            resolved_ms: opt_num("resolved_ms")?,
            peak: num("peak")?,
            blame: Blame {
                hosts,
                rack: opt_idx("rack")?,
                domain: opt_idx("domain")?,
                tenant: match bfield("tenant")? {
                    Value::Null => None,
                    Value::String(s) => Some(s.clone()),
                    _ => return Err("blame tenant is not a string or null".to_string()),
                },
                merged_into: match bfield("merged_into")? {
                    Value::Null => None,
                    Value::Number(n) => Some(*n as u64),
                    _ => return Err("blame merged_into is not a number or null".to_string()),
                },
            },
        })
    }
}

/// A run's complete incident timeline, as written by `--incidents-out`.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// The monitor cadence the folds were stamped on, ms.
    pub interval_ms: f64,
    /// Folds the monitor closed (including the final partial one).
    pub folds: u64,
    /// Incidents in open order.
    pub incidents: Vec<Incident>,
}

impl IncidentReport {
    /// Export as a `tpu-incidents` v1 JSON document.
    pub fn to_json(&self) -> Value {
        Value::object([
            (
                "format".to_string(),
                Value::String("tpu-incidents".to_string()),
            ),
            ("version".to_string(), Value::Number(1.0)),
            ("interval_ms".to_string(), Value::Number(self.interval_ms)),
            ("folds".to_string(), Value::Number(self.folds as f64)),
            (
                "incidents".to_string(),
                Value::Array(self.incidents.iter().map(Incident::to_json).collect()),
            ),
        ])
    }

    /// The document as pretty-printed JSON text (newline-terminated).
    pub fn render(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()) + "\n"
    }

    /// True when `v` looks like a `tpu-incidents` document.
    pub fn is_incidents_json(v: &Value) -> bool {
        matches!(v, Value::Object(m)
            if matches!(m.get("format"), Some(Value::String(f)) if f == "tpu-incidents"))
    }

    /// Parse a `tpu-incidents` v1 document.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed field.
    pub fn parse(text: &str) -> Result<IncidentReport, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("incidents: {e}"))?;
        Self::from_json(&v)
    }

    /// As [`IncidentReport::parse`], from an already-parsed [`Value`].
    ///
    /// # Errors
    ///
    /// A message naming the first malformed field.
    pub fn from_json(v: &Value) -> Result<IncidentReport, String> {
        let Value::Object(m) = v else {
            return Err("incidents: not a JSON object".to_string());
        };
        if !Self::is_incidents_json(v) {
            return Err("incidents: format is not \"tpu-incidents\"".to_string());
        }
        match m.get("version") {
            Some(Value::Number(n)) if *n == 1.0 => {}
            other => return Err(format!("incidents: unsupported version {other:?}")),
        }
        let interval_ms = match m.get("interval_ms") {
            Some(Value::Number(n)) if *n > 0.0 => *n,
            _ => return Err("incidents: bad interval_ms".to_string()),
        };
        let folds = match m.get("folds") {
            Some(Value::Number(n)) if *n >= 0.0 => *n as u64,
            _ => return Err("incidents: bad folds".to_string()),
        };
        let incidents = match m.get("incidents") {
            Some(Value::Array(a)) => a
                .iter()
                .map(Incident::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("incidents: missing incidents array".to_string()),
        };
        Ok(IncidentReport {
            interval_ms,
            folds,
            incidents,
        })
    }

    /// The human-readable timeline the `monitor` subcommand prints:
    /// a one-line summary, then one line per incident in open order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let pages = self
            .incidents
            .iter()
            .filter(|i| i.severity == Severity::Page)
            .count();
        let open = self.incidents.iter().filter(|i| i.open_at_end()).count();
        out.push_str(&format!(
            "incidents: {} ({} page, {} warn), {} open at end  [{} folds @ {} ms]\n",
            self.incidents.len(),
            pages,
            self.incidents.len() - pages,
            open,
            self.folds,
            self.interval_ms
        ));
        for i in &self.incidents {
            let until = match i.resolved_ms {
                Some(r) => format!("{r:.3}"),
                None => "end".to_string(),
            };
            let acked = match i.acked_ms {
                Some(a) => format!("  acked {a:.3}"),
                None => String::new(),
            };
            let mut blame = Vec::new();
            if !i.blame.hosts.is_empty() {
                let hosts: Vec<String> = i.blame.hosts.iter().map(|h| format!("{h}")).collect();
                blame.push(format!("hosts [{}]", hosts.join(",")));
            }
            if let Some(r) = i.blame.rack {
                blame.push(format!("rack {r}"));
            }
            if let Some(d) = i.blame.domain {
                blame.push(format!("domain {d}"));
            }
            if let Some(t) = &i.blame.tenant {
                blame.push(format!("tenant {t}"));
            }
            if let Some(m) = i.blame.merged_into {
                blame.push(format!("merged into #{m}"));
            }
            let blame = if blame.is_empty() {
                String::new()
            } else {
                format!("  blame: {}", blame.join(", "))
            };
            out.push_str(&format!(
                "  #{:<3} [{}] {:<12} {:<16} {:>8.3} .. {:<8}{}  peak {:.2}{}\n",
                i.id,
                i.severity.as_str(),
                i.kind.as_str(),
                i.subject,
                i.opened_ms,
                until,
                acked,
                i.peak,
                blame
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IncidentReport {
        IncidentReport {
            interval_ms: 0.05,
            folds: 40,
            incidents: vec![
                Incident {
                    id: 1,
                    kind: IncidentKind::Outage,
                    subject: "rack0".to_string(),
                    severity: Severity::Page,
                    opened_ms: 0.5,
                    acked_ms: Some(0.6),
                    resolved_ms: Some(0.8),
                    peak: 5.0,
                    blame: Blame {
                        hosts: vec![0, 1, 2, 3],
                        rack: Some(0),
                        domain: Some(0),
                        tenant: None,
                        merged_into: None,
                    },
                },
                Incident {
                    id: 2,
                    kind: IncidentKind::Burn,
                    subject: "cell000".to_string(),
                    severity: Severity::Page,
                    opened_ms: 0.55,
                    acked_ms: None,
                    resolved_ms: None,
                    peak: 8.25,
                    blame: Blame {
                        tenant: Some("cell000".to_string()),
                        ..Blame::default()
                    },
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let r = sample();
        let parsed = IncidentReport::parse(&r.render()).expect("round-trip");
        assert_eq!(r, parsed);
    }

    #[test]
    fn format_detection_and_bad_documents() {
        let r = sample();
        assert!(IncidentReport::is_incidents_json(&r.to_json()));
        assert!(!IncidentReport::is_incidents_json(&Value::object([])));
        assert!(IncidentReport::parse("{}").is_err());
        assert!(IncidentReport::parse("not json").is_err());
        let wrong_version = r.render().replace("\"version\": 1", "\"version\": 2");
        assert!(IncidentReport::parse(&wrong_version)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn overlap_treats_open_incidents_as_unbounded() {
        let r = sample();
        assert!(r.incidents[0].overlaps(0.7, 1.0));
        assert!(!r.incidents[0].overlaps(0.9, 1.0));
        assert!(r.incidents[1].overlaps(100.0, 200.0), "open at end");
        assert!(!r.incidents[1].overlaps(0.0, 0.5));
    }

    #[test]
    fn text_rendering_names_every_incident() {
        let text = sample().render_text();
        assert!(text.contains("incidents: 2 (2 page, 0 warn), 1 open at end"));
        assert!(text.contains("rack0") && text.contains("cell000"));
        assert!(text.contains("rack 0") && text.contains("tenant cell000"));
        assert!(text.contains(".. end"), "open incident renders 'end'");
    }
}
