//! Monitor configuration: cadence, topology, and detector thresholds.

use tpu_cluster::FleetTopology;

/// Multi-window SLO burn-rate alerting, per tenant.
///
/// Burn rate is the observed SLO-miss fraction divided by the error
/// budget `1 - target`: a service exactly meeting its target burns at
/// 1.0, one missing every request at `1/(1-target)`. The alert opens
/// when **both** a fast and a slow trailing window exceed their
/// thresholds (the fast window gives reaction time, the slow one
/// suppresses blips), and resolves once the fast window stays under
/// its threshold for [`BurnConfig::clear_folds`] consecutive folds.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnConfig {
    /// SLO attainment target (fraction of requests within SLO).
    pub target: f64,
    /// Fast window length, in cadence folds.
    pub fast_folds: usize,
    /// Slow window length, in cadence folds.
    pub slow_folds: usize,
    /// Burn-rate threshold for the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold for the slow window.
    pub slow_burn: f64,
    /// Minimum served requests in the slow window before it may alert.
    pub min_served: u64,
    /// Consecutive cool fast-window folds required to resolve.
    pub clear_folds: u32,
}

impl Default for BurnConfig {
    fn default() -> Self {
        BurnConfig {
            target: 0.9,
            fast_folds: 4,
            slow_folds: 16,
            fast_burn: 6.0,
            slow_burn: 3.0,
            min_served: 16,
            clear_folds: 4,
        }
    }
}

/// Straggler scoring: a die whose trailing-window mean service time
/// sits far above its tenant's cross-die median.
///
/// Completions arrive in batches ~a batch-service-time apart, so a
/// single cadence fold usually holds either a whole batch or nothing;
/// each die's per-fold sums therefore accumulate into a trailing
/// window of [`StragglerConfig::window_folds`] folds before scoring.
/// Peer groups are per tenant — different models have wildly different
/// service times, so a fleet-wide median would flag every die serving
/// the slowest model. The spread is the median absolute deviation,
/// floored at [`StragglerConfig::rel_floor`] of the median so a
/// near-zero MAD (all healthy dies identical) cannot inflate z.
/// Tenants whose `arrived/` gauge has been quiet for more than a
/// quarter window stop being scored: the end-of-run drain flushes
/// ragged partial batches whose durations say nothing about die
/// health.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerConfig {
    /// MAD-normalized z-score threshold.
    pub z: f64,
    /// The die's mean must also exceed `ratio` x the median.
    pub ratio: f64,
    /// Trailing window length, in cadence folds.
    pub window_folds: usize,
    /// Minimum completions on a die in the window for it to be scored.
    pub min_samples: u64,
    /// Minimum dies in the peer group for the median to mean anything.
    pub min_peers: usize,
    /// Spread floor as a fraction of the median.
    pub rel_floor: f64,
    /// Consecutive flagged folds required to open.
    pub confirm_folds: u32,
    /// Consecutive clean folds required to resolve.
    pub clear_folds: u32,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig {
            z: 4.0,
            ratio: 2.0,
            window_folds: 40,
            min_samples: 4,
            min_peers: 3,
            rel_floor: 0.1,
            confirm_folds: 2,
            clear_folds: 2,
        }
    }
}

/// Outage detection: a host whose backlog (queued + in-flight
/// requests) is empty across [`OutageConfig::folds`] consecutive folds
/// while at least [`OutageConfig::min_demand`] new requests arrived
/// that fold for tenants placed on it — the router hands a reachable
/// empty host work immediately, so sustained emptiness while its
/// tenants' arrivals keep flowing means the router can't reach it
/// (crash, or a partition once the host drains). Hosts that never held
/// work are exempt, and the demand gate closes when arrivals stop, so
/// the end-of-run drain never alerts.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageConfig {
    /// Consecutive empty-under-demand folds required to open.
    pub folds: u32,
    /// New-arrivals-per-fold floor (summed over tenants placed on the
    /// host) for an empty fold to count.
    pub min_demand: f64,
}

impl Default for OutageConfig {
    fn default() -> Self {
        OutageConfig {
            folds: 3,
            min_demand: 4.0,
        }
    }
}

/// Retry-storm detection over the derivative of the fleet's cumulative
/// retry counter: the per-fold retry rate (retries per simulated ms)
/// must exceed [`RetryStormConfig::rate_per_ms`] for
/// [`RetryStormConfig::confirm_folds`] consecutive folds.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryStormConfig {
    /// Retry-rate threshold, retries per simulated millisecond.
    pub rate_per_ms: f64,
    /// Consecutive hot folds required to open.
    pub confirm_folds: u32,
    /// Consecutive cool folds required to resolve.
    pub clear_folds: u32,
    /// Rate multiple over the threshold that escalates severity to
    /// page.
    pub page_multiple: f64,
}

impl Default for RetryStormConfig {
    fn default() -> Self {
        RetryStormConfig {
            rate_per_ms: 200.0,
            confirm_folds: 2,
            clear_folds: 2,
            page_multiple: 4.0,
        }
    }
}

/// The full monitor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Sampling cadence in simulated milliseconds. When a metrics
    /// recorder rides along, the CLIs keep both on the same cadence so
    /// the online fold stream is exactly reconstructible from the
    /// metrics artifact ([`crate::FleetMonitor::replay`]).
    pub interval_ms: f64,
    /// Failure-domain structure for incident blame; `None` keeps
    /// outage incidents at host granularity.
    pub topology: Option<FleetTopology>,
    /// SLO burn alerting.
    pub burn: BurnConfig,
    /// Straggler scoring.
    pub straggler: StragglerConfig,
    /// Host outage detection.
    pub outage: OutageConfig,
    /// Retry-storm detection.
    pub retry_storm: RetryStormConfig,
    /// Folds an incident must stay active before it is auto-acked.
    pub ack_folds: u32,
    /// Per-host utilization history rows retained for the fleet
    /// heatmap (oldest dropped beyond; incident detection is
    /// unaffected).
    pub history_cap: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval_ms: 0.05,
            topology: None,
            burn: BurnConfig::default(),
            straggler: StragglerConfig::default(),
            outage: OutageConfig::default(),
            retry_storm: RetryStormConfig::default(),
            ack_folds: 2,
            history_cap: 4096,
        }
    }
}

impl MonitorConfig {
    /// A config on the given cadence with every detector at defaults.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive or non-finite cadence.
    pub fn with_interval(interval_ms: f64) -> Self {
        assert!(
            interval_ms.is_finite() && interval_ms > 0.0,
            "monitor cadence must be positive"
        );
        MonitorConfig {
            interval_ms,
            ..MonitorConfig::default()
        }
    }

    /// Attach the fleet's failure-domain topology for incident blame.
    pub fn with_topology(mut self, topology: FleetTopology) -> Self {
        self.topology = Some(topology);
        self
    }
}
