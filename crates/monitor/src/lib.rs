//! # tpu-monitor — the streaming fleet health monitor
//!
//! PR 6/7 built *recording* (traces, metrics, request logs) and
//! *offline* analysis; this crate is the online layer: a
//! [`FleetMonitor`] attached to a run consumes the telemetry probe
//! stream *while the simulation executes* and folds it into alerts and
//! a structured incident timeline, exactly the way a production SRE
//! stack watches the paper's "7 ms p99" SLO as it burns — except that
//! here the failures come from a known injected schedule, so detection
//! precision and recall can be scored against ground truth.
//!
//! Three detector families run per cadence fold:
//!
//! * **SLO burn-rate alerting** ([`BurnConfig`]) — per tenant, the
//!   classic multi-window rule: alert when both a fast and a slow
//!   trailing window burn error budget faster than threshold, resolve
//!   with hysteresis once the fast window cools.
//! * **Anomaly detectors** — straggler scoring
//!   ([`StragglerConfig`]: per-die trailing-window mean service time
//!   vs the tenant's cross-die median, MAD-normalized z plus a ratio
//!   guard), outage detection ([`OutageConfig`]: a host whose backlog
//!   reads empty for K folds while arrivals keep flowing for tenants
//!   placed on it), and retry-storm detection ([`RetryStormConfig`]:
//!   the derivative of the fleet's cumulative retry counter).
//! * **Incident segmentation** ([`Incident`]) — alert edges fold into
//!   `tpu-incidents` v1 JSON with open/ack/resolve edges and severity;
//!   host-level outage alerts that cover a whole rack (or power
//!   domain) collapse into one incident blamed on that failure domain
//!   via [`tpu_cluster::FleetTopology`].
//!
//! The determinism contract matches every other instrument: the
//! monitor observes sim-time state at event-pop time, schedules
//! nothing, draws no RNG, so a monitored run reports byte-identically
//! to a bare one — and because every input it folds is also recorded
//! by the metrics recorder and the request log, the whole online
//! computation can be replayed offline from the artifacts
//! ([`FleetMonitor::replay`]) to the bit-identical incident set
//! (streaming ≡ batch; the proptests pin this).

#![warn(missing_docs)]

mod config;
mod incident;
mod monitor;
mod render;
mod replay;

pub use config::{BurnConfig, MonitorConfig, OutageConfig, RetryStormConfig, StragglerConfig};
pub use incident::{Blame, Incident, IncidentKind, IncidentReport, Severity};
pub use monitor::{FleetMonitor, HistoryRow};
pub use render::{heatmap_svg, timeline_svg};
