//! SVG rendering: the incident timeline and the fleet heatmap.

use crate::incident::{IncidentReport, Severity};
use crate::monitor::HistoryRow;
use tpu_plot::{band_timeline, heat_grid, Band, Lane, PlotError};

/// Render the incident timeline: one lane per incident in open order,
/// a band from open to resolve (or to end of run), red for pages and
/// orange for warns, with a black tick at the ack time. Returns `None`
/// when the report holds no incidents (nothing to draw is not an
/// error).
///
/// # Errors
///
/// Propagates [`PlotError`] from the chart layer (non-finite edges).
pub fn timeline_svg(report: &IncidentReport) -> Result<Option<String>, PlotError> {
    if report.incidents.is_empty() {
        return Ok(None);
    }
    let t_end = report.folds.saturating_sub(1) as f64 * report.interval_ms;
    let t_max = report
        .incidents
        .iter()
        .map(|i| i.resolved_ms.unwrap_or(i.opened_ms))
        .fold(t_end, f64::max);
    let lanes: Vec<Lane> = report
        .incidents
        .iter()
        .map(|i| Lane {
            label: format!("#{} {} {}", i.id, i.kind.as_str(), i.subject),
            bands: vec![Band {
                start: i.opened_ms,
                end: i.resolved_ms.unwrap_or(t_max),
                color: match i.severity {
                    Severity::Page => "#c0392b".to_string(),
                    Severity::Warn => "#e67e22".to_string(),
                },
                marker: i.acked_ms,
            }],
        })
        .collect();
    band_timeline(
        "incident timeline",
        &lanes,
        0.0,
        t_max.max(report.interval_ms),
    )
    .map(Some)
}

/// Render the fleet heatmap: hosts × retained folds, shaded by each
/// host's per-fold busy rate. Returns `None` when no history rows were
/// retained (e.g. the run closed fewer than two folds).
///
/// # Errors
///
/// Propagates [`PlotError`] from the chart layer.
pub fn heatmap_svg<'a, I>(history: I) -> Result<Option<String>, PlotError>
where
    I: IntoIterator<Item = &'a HistoryRow>,
{
    let rows: Vec<&HistoryRow> = history.into_iter().collect();
    if rows.is_empty() {
        return Ok(None);
    }
    let cols: Vec<f64> = rows.iter().map(|(t, _)| *t).collect();
    let mut hosts: Vec<usize> = rows
        .iter()
        .flat_map(|(_, cells)| cells.iter().map(|&(h, _)| h))
        .collect();
    hosts.sort_unstable();
    hosts.dedup();
    let grid: Vec<(String, Vec<f64>)> = hosts
        .iter()
        .map(|&h| {
            let values = rows
                .iter()
                .map(|(_, cells)| {
                    cells
                        .iter()
                        .find(|&&(hh, _)| hh == h)
                        .map(|&(_, v)| v)
                        .unwrap_or(f64::NAN)
                })
                .collect();
            (format!("host{h}"), values)
        })
        .collect();
    heat_grid("fleet busy rate (per-host, per fold)", &cols, &grid).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::{Blame, Incident, IncidentKind};

    #[test]
    fn timeline_renders_bands_per_incident() {
        let report = IncidentReport {
            interval_ms: 0.05,
            folds: 40,
            incidents: vec![Incident {
                id: 1,
                kind: IncidentKind::Outage,
                subject: "rack0".to_string(),
                severity: Severity::Page,
                opened_ms: 0.5,
                acked_ms: Some(0.6),
                resolved_ms: None,
                peak: 4.0,
                blame: Blame::default(),
            }],
        };
        let svg = timeline_svg(&report).expect("renders").expect("has lanes");
        assert!(svg.contains("#1 outage rack0"));
        assert!(svg.contains("#c0392b"));
        let empty = IncidentReport {
            incidents: vec![],
            ..report
        };
        assert!(timeline_svg(&empty).expect("no error").is_none());
    }

    #[test]
    fn heatmap_renders_hosts_by_folds() {
        let rows: Vec<HistoryRow> = vec![
            (1.0, vec![(0, 0.5), (1, 1.0)]),
            (2.0, vec![(0, 0.0), (1, 2.0)]),
        ];
        let svg = heatmap_svg(rows.iter())
            .expect("renders")
            .expect("has rows");
        assert!(svg.contains("host0") && svg.contains("host1"));
        let empty: Vec<HistoryRow> = Vec::new();
        assert!(heatmap_svg(empty.iter()).expect("no error").is_none());
    }
}
