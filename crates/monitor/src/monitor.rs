//! The streaming monitor core: fold accumulation, the four detectors,
//! and alert → incident reconciliation.
//!
//! A [`FleetMonitor`] rides the engine loop exactly like the metrics
//! recorder: `due`/`advance` replicate [`MetricsRecorder`]'s cadence
//! arithmetic bit for bit, gauges are recorded into a snapshot at each
//! fold, and per-request observations accumulate between folds. All
//! state lives in `BTreeMap`s and every floating-point reduction runs
//! in deterministic key order, so the incident set is a pure function
//! of the observation stream — which is what lets
//! [`FleetMonitor::replay`] rebuild it bit-identically from artifacts.
//!
//! [`MetricsRecorder`]: tpu_telemetry::MetricsRecorder

use crate::config::MonitorConfig;
use crate::incident::{Blame, Incident, IncidentKind, IncidentReport, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tpu_telemetry::MonitorSink;

/// `(tenant, host, die)` — the straggler detector's unit of blame.
type DieKey = (String, usize, usize);

/// Hysteresis state machine shared by every detector: `confirm`
/// consecutive flagged folds to open, `clear` consecutive clean folds
/// to resolve.
#[derive(Debug, Default, Clone, PartialEq)]
struct AlertSm {
    on: bool,
    run: u32,
}

impl AlertSm {
    fn step(&mut self, flagged: bool, confirm: u32, clear: u32) {
        if self.on == flagged {
            self.run = 0;
        } else {
            self.run += 1;
            let needed = if self.on { clear } else { confirm };
            if self.run >= needed {
                self.on = !self.on;
                self.run = 0;
            }
        }
    }

    /// True when the state machine is idle and can be pruned.
    fn idle(&self) -> bool {
        !self.on && self.run == 0
    }
}

#[derive(Debug, Default)]
struct BurnState {
    /// Per-fold `(served, missed)`, newest last, capped at
    /// `slow_folds`.
    window: VecDeque<(u64, u64)>,
    sm: AlertSm,
}

#[derive(Debug, Default)]
struct OutageState {
    /// The host has held a nonzero backlog at least once — hosts that
    /// never received work are exempt from dark alerts.
    ever_active: bool,
    /// Consecutive empty-under-demand folds (the incident magnitude).
    dark_run: u32,
    sm: AlertSm,
}

/// One fold's desired alert surface for a subject, fed into incident
/// reconciliation.
#[derive(Debug)]
struct AlertSpec {
    kind: IncidentKind,
    subject: String,
    severity: Severity,
    magnitude: f64,
    blame: Blame,
}

#[derive(Debug)]
struct ActiveRec {
    /// Index into `FleetMonitor::incidents`.
    idx: usize,
    /// Folds the incident has been active (drives auto-ack).
    folds: u32,
}

/// One retained history row: `(fold stamp, per-host busy delta per
/// simulated ms)` — the fleet heatmap's raw material.
pub type HistoryRow = (f64, Vec<(usize, f64)>);

/// The streaming fleet health monitor (crate docs have the full tour).
///
/// Attach by boxing into [`tpu_telemetry::RunTelemetry::monitor`]; the
/// engine drives the [`MonitorSink`] methods and the harness downcasts
/// back out at end of run to extract the [`IncidentReport`].
#[derive(Debug)]
pub struct FleetMonitor {
    cfg: MonitorConfig,
    interval_ms: f64,
    next_ms: f64,
    folds: u64,
    last_stamp: Option<f64>,
    /// Latest recorded value per gauge series.
    snapshot: BTreeMap<String, f64>,
    /// Per-fold `(served, missed)` per tenant.
    tenant_acc: BTreeMap<String, (u64, u64)>,
    /// Per-fold `(service-time sum, completions)` per die.
    die_acc: BTreeMap<DieKey, (f64, u64)>,
    /// Trailing per-fold `(service-time sum, completions)` windows per
    /// die, newest last, capped at `straggler.window_folds`.
    die_win: BTreeMap<DieKey, VecDeque<(f64, u64)>>,
    burn: BTreeMap<String, BurnState>,
    straggler: BTreeMap<DieKey, AlertSm>,
    outage: BTreeMap<usize, OutageState>,
    /// Previous fold's cumulative `arrived/` gauge per tenant, for the
    /// outage and straggler demand gates.
    arrived_prev: BTreeMap<String, f64>,
    /// Folds since each gauged tenant last arrived anything, for the
    /// straggler drain gate. Tenants with no `arrived/` gauge (the
    /// single-host engine) are absent and never gated.
    arrival_quiet: BTreeMap<String, u32>,
    retry_prev: BTreeMap<String, f64>,
    retry_sm: AlertSm,
    /// Previous fold's busy gauge per host, for history deltas.
    busy_prev: BTreeMap<usize, f64>,
    incidents: Vec<Incident>,
    active: BTreeMap<String, ActiveRec>,
    history: VecDeque<HistoryRow>,
    history_dropped: u64,
}

impl FleetMonitor {
    /// An idle monitor; the first fold closes at t=0.
    pub fn new(cfg: MonitorConfig) -> Self {
        assert!(
            cfg.interval_ms.is_finite() && cfg.interval_ms > 0.0,
            "monitor cadence must be positive"
        );
        let interval_ms = cfg.interval_ms;
        FleetMonitor {
            cfg,
            interval_ms,
            next_ms: 0.0,
            folds: 0,
            last_stamp: None,
            snapshot: BTreeMap::new(),
            tenant_acc: BTreeMap::new(),
            die_acc: BTreeMap::new(),
            die_win: BTreeMap::new(),
            burn: BTreeMap::new(),
            straggler: BTreeMap::new(),
            outage: BTreeMap::new(),
            arrived_prev: BTreeMap::new(),
            arrival_quiet: BTreeMap::new(),
            retry_prev: BTreeMap::new(),
            retry_sm: AlertSm::default(),
            busy_prev: BTreeMap::new(),
            incidents: Vec::new(),
            active: BTreeMap::new(),
            history: VecDeque::new(),
            history_dropped: 0,
        }
    }

    /// The configuration the monitor runs with.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Folds closed so far.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// The incident timeline as a renderable report (incidents still
    /// active stay unresolved — `open_at_end`).
    pub fn report(&self) -> IncidentReport {
        IncidentReport {
            interval_ms: self.interval_ms,
            folds: self.folds,
            incidents: self.incidents.clone(),
        }
    }

    /// Retained per-host utilization history rows, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &HistoryRow> {
        self.history.iter()
    }

    /// History rows dropped to the retention bound.
    pub fn history_dropped(&self) -> u64 {
        self.history_dropped
    }

    /// Every host the monitor has seen a backlog gauge for, ascending.
    pub fn known_hosts(&self) -> Vec<usize> {
        self.outage.keys().copied().collect()
    }

    /// Values of a `prefix{usize}`-keyed gauge family from the
    /// snapshot, ascending by the parsed index.
    fn indexed_gauges(&self, prefix: &str) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .snapshot
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .filter_map(|(name, &v)| name[prefix.len()..].parse::<usize>().ok().map(|i| (i, v)))
            .collect();
        out.sort_by_key(|&(i, _)| i);
        out
    }

    /// The multi-window burn detector; returns this fold's desired
    /// alert specs.
    fn fold_burn(&mut self, specs: &mut BTreeMap<String, AlertSpec>) {
        let c = &self.cfg.burn;
        let budget = 1.0 - c.target;
        let tenants: BTreeSet<String> = self
            .burn
            .keys()
            .chain(self.tenant_acc.keys())
            .cloned()
            .collect();
        for tenant in tenants {
            let (served, missed) = self.tenant_acc.get(&tenant).copied().unwrap_or((0, 0));
            let st = self.burn.entry(tenant.clone()).or_default();
            st.window.push_back((served, missed));
            while st.window.len() > c.slow_folds {
                st.window.pop_front();
            }
            let sum = |folds: usize| {
                st.window
                    .iter()
                    .rev()
                    .take(folds)
                    .fold((0u64, 0u64), |(s, m), &(fs, fm)| (s + fs, m + fm))
            };
            let rate = |(s, m): (u64, u64)| {
                if s == 0 {
                    0.0
                } else {
                    (m as f64 / s as f64) / budget
                }
            };
            let fast = rate(sum(c.fast_folds));
            let (slow_served, slow_missed) = sum(c.slow_folds);
            let slow = rate((slow_served, slow_missed));
            // Opening needs both windows hot and enough slow-window
            // traffic; once open, only the fast window going cool (for
            // `clear_folds` folds) resolves.
            let flagged = if st.sm.on {
                fast >= c.fast_burn
            } else {
                fast >= c.fast_burn && slow >= c.slow_burn && slow_served >= c.min_served
            };
            st.sm.step(flagged, 1, c.clear_folds);
            if st.sm.on {
                specs.insert(
                    format!("burn:{tenant}"),
                    AlertSpec {
                        kind: IncidentKind::Burn,
                        subject: tenant.clone(),
                        severity: Severity::Page,
                        magnitude: fast.max(slow),
                        blame: Blame {
                            tenant: Some(tenant.clone()),
                            ..Blame::default()
                        },
                    },
                );
            } else if st.sm.idle() && st.window.iter().all(|&(s, _)| s == 0) {
                self.burn.remove(&tenant);
            }
        }
    }

    /// The straggler detector: per tenant, score each die's
    /// trailing-window mean service time against the cross-die median.
    fn fold_straggler(&mut self, specs: &mut BTreeMap<String, AlertSpec>) {
        let c = &self.cfg.straggler;
        // Roll this fold's per-die accumulators into the trailing
        // windows; dies already windowed roll an empty fold so their
        // window keeps sliding.
        let roll: BTreeSet<DieKey> = self
            .die_win
            .keys()
            .chain(self.die_acc.keys())
            .cloned()
            .collect();
        for key in &roll {
            let fold = self.die_acc.get(key).copied().unwrap_or((0.0, 0));
            let win = self.die_win.entry(key.clone()).or_default();
            win.push_back(fold);
            while win.len() > c.window_folds {
                win.pop_front();
            }
        }
        // Per-tenant peer groups of (key, window mean) for dies with
        // enough samples in the window. Window sums run oldest-first in
        // BTreeMap key order, so they are bitwise reproducible from the
        // same per-fold accumulators.
        let mut groups: BTreeMap<&str, Vec<(&DieKey, f64)>> = BTreeMap::new();
        for (key, win) in &self.die_win {
            let (sum, n) = win
                .iter()
                .fold((0.0f64, 0u64), |(s, k), &(fs, fc)| (s + fs, k + fc));
            if n >= c.min_samples {
                groups
                    .entry(key.0.as_str())
                    .or_default()
                    .push((key, sum / n as f64));
            }
        }
        let mut flagged: BTreeMap<DieKey, f64> = BTreeMap::new();
        for (tenant, peers) in &groups {
            if peers.len() < c.min_peers {
                continue;
            }
            // Drain gate: once a gauged tenant's arrivals have been
            // quiet for a quarter window, its dies stop being scored —
            // end-of-run drain flushes ragged partial batches whose
            // durations say nothing about die health.
            let quiet_cap = (c.window_folds / 4) as u32;
            if self
                .arrival_quiet
                .get(*tenant)
                .is_some_and(|&q| q > quiet_cap)
            {
                continue;
            }
            let mut means: Vec<f64> = peers.iter().map(|&(_, m)| m).collect();
            means.sort_by(|a, b| a.partial_cmp(b).expect("finite service means"));
            let med = means[(means.len() - 1) / 2];
            let mut devs: Vec<f64> = means.iter().map(|m| (m - med).abs()).collect();
            devs.sort_by(|a, b| a.partial_cmp(b).expect("finite deviations"));
            let spread = devs[(devs.len() - 1) / 2].max(c.rel_floor * med);
            if spread <= 0.0 {
                continue;
            }
            for &(key, mean) in peers {
                let z = (mean - med) / spread;
                if z >= c.z && mean >= c.ratio * med {
                    flagged.insert(key.clone(), z);
                }
            }
        }
        let keys: BTreeSet<DieKey> = self
            .straggler
            .keys()
            .chain(flagged.keys())
            .cloned()
            .collect();
        for key in keys {
            let sm = self.straggler.entry(key.clone()).or_default();
            sm.step(flagged.contains_key(&key), c.confirm_folds, c.clear_folds);
            if sm.on {
                let (tenant, host, die) = &key;
                specs.insert(
                    format!("straggler:{tenant}:{host}/{die}"),
                    AlertSpec {
                        kind: IncidentKind::Straggler,
                        subject: format!("host{host}/die{die}"),
                        severity: Severity::Warn,
                        magnitude: flagged.get(&key).copied().unwrap_or(0.0),
                        blame: Blame {
                            hosts: vec![*host],
                            tenant: Some(tenant.clone()),
                            ..Blame::default()
                        },
                    },
                );
            } else if sm.idle() {
                self.straggler.remove(&key);
            }
        }
        // Drop windows that hold no completions once their state
        // machine is idle, so dies that stopped serving don't linger.
        let held: BTreeSet<DieKey> = self.straggler.keys().cloned().collect();
        self.die_win
            .retain(|key, win| held.contains(key) || win.iter().any(|&(_, n)| n > 0));
    }

    /// New arrivals this fold per tenant, from the cumulative
    /// `arrived/` gauges; also advances the per-tenant quiet counters
    /// behind the straggler drain gate.
    fn fold_arrivals(&mut self) -> BTreeMap<String, f64> {
        let arrived: Vec<(String, f64)> = self
            .snapshot
            .range("arrived/".to_string()..)
            .take_while(|(name, _)| name.starts_with("arrived/"))
            .map(|(name, &v)| (name["arrived/".len()..].to_string(), v))
            .collect();
        let mut deltas: BTreeMap<String, f64> = BTreeMap::new();
        for (tenant, cur) in arrived {
            let prev = self.arrived_prev.get(&tenant).copied().unwrap_or(0.0);
            let delta = cur - prev;
            self.arrived_prev.insert(tenant.clone(), cur);
            let quiet = self.arrival_quiet.entry(tenant.clone()).or_insert(0);
            *quiet = if delta > 0.0 { 0 } else { *quiet + 1 };
            deltas.insert(tenant, delta);
        }
        deltas
    }

    /// The outage detector: a host whose backlog gauge reads empty
    /// while new arrivals keep flowing for tenants placed on it, with
    /// alerted hosts folded up to rack / power-domain incidents when a
    /// whole domain is dark.
    fn fold_outage(
        &mut self,
        deltas: &BTreeMap<String, f64>,
        specs: &mut BTreeMap<String, AlertSpec>,
    ) {
        // Tenants currently placed on each host, from the
        // `placed/{tenant}/host{h}` live-replica gauges.
        let mut placed: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, &v) in self
            .snapshot
            .range("placed/".to_string()..)
            .take_while(|(name, _)| name.starts_with("placed/"))
        {
            if v <= 0.0 {
                continue;
            }
            let rest = &name["placed/".len()..];
            if let Some(i) = rest.rfind("/host") {
                if let Ok(h) = rest[i + "/host".len()..].parse::<usize>() {
                    placed.entry(h).or_default().push(&rest[..i]);
                }
            }
        }
        // Discover hosts via their backlog gauges and step each host's
        // dark state machine.
        let backlog = self.indexed_gauges("backlog/host");
        let confirm = self.cfg.outage.folds;
        let min_demand = self.cfg.outage.min_demand;
        for &(h, b) in &backlog {
            let demand: f64 = placed
                .get(&h)
                .map(|tenants| {
                    tenants
                        .iter()
                        .map(|t| deltas.get(*t).copied().unwrap_or(0.0))
                        .sum()
                })
                .unwrap_or(0.0);
            let st = self.outage.entry(h).or_default();
            if b > 0.0 {
                st.ever_active = true;
            }
            let flagged = st.ever_active && b == 0.0 && demand >= min_demand;
            st.dark_run = if flagged { st.dark_run + 1 } else { 0 };
            st.sm.step(flagged, confirm, 1);
        }
        let alerted: BTreeSet<usize> = self
            .outage
            .iter()
            .filter(|(_, st)| st.sm.on)
            .map(|(&h, _)| h)
            .collect();
        if alerted.is_empty() {
            return;
        }
        let magnitude = |hosts: &[usize]| {
            hosts
                .iter()
                .map(|h| self.outage[h].dark_run as f64)
                .fold(0.0f64, f64::max)
        };
        let Some(topo) = self.cfg.topology else {
            for &h in &alerted {
                specs.insert(
                    format!("outage:host{h}"),
                    AlertSpec {
                        kind: IncidentKind::Outage,
                        subject: format!("host{h}"),
                        severity: Severity::Warn,
                        magnitude: magnitude(&[h]),
                        blame: Blame {
                            hosts: vec![h],
                            ..Blame::default()
                        },
                    },
                );
            }
            return;
        };
        // Fold alerted hosts upward: a rack is dark when every known
        // host in it is alerted; a power domain when every known host
        // across at least two of its racks is.
        let mut rack_members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &h in self.outage.keys() {
            rack_members.entry(topo.rack_of(h)).or_default().push(h);
        }
        let dark_racks: BTreeSet<usize> = rack_members
            .iter()
            .filter(|(_, hosts)| hosts.iter().all(|h| alerted.contains(h)))
            .map(|(&r, _)| r)
            .collect();
        let mut domain_racks: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &r in rack_members.keys() {
            domain_racks
                .entry(r / topo.racks_per_domain)
                .or_default()
                .push(r);
        }
        let dark_domains: BTreeSet<usize> = domain_racks
            .iter()
            .filter(|(_, racks)| racks.len() >= 2 && racks.iter().all(|r| dark_racks.contains(r)))
            .map(|(&d, _)| d)
            .collect();
        for &d in &dark_domains {
            let hosts: Vec<usize> = domain_racks[&d]
                .iter()
                .flat_map(|r| rack_members[r].iter().copied())
                .collect();
            specs.insert(
                format!("outage:domain{d}"),
                AlertSpec {
                    kind: IncidentKind::Outage,
                    subject: format!("domain{d}"),
                    severity: Severity::Page,
                    magnitude: magnitude(&hosts),
                    blame: Blame {
                        hosts,
                        domain: Some(d),
                        ..Blame::default()
                    },
                },
            );
        }
        for &r in &dark_racks {
            if dark_domains.contains(&(r / topo.racks_per_domain)) {
                continue;
            }
            let hosts = rack_members[&r].clone();
            specs.insert(
                format!("outage:rack{r}"),
                AlertSpec {
                    kind: IncidentKind::Outage,
                    subject: format!("rack{r}"),
                    severity: Severity::Page,
                    magnitude: magnitude(&hosts),
                    blame: Blame {
                        hosts,
                        rack: Some(r),
                        domain: Some(r / topo.racks_per_domain),
                        ..Blame::default()
                    },
                },
            );
        }
        for &h in &alerted {
            let r = topo.rack_of(h);
            if dark_racks.contains(&r) || dark_domains.contains(&(r / topo.racks_per_domain)) {
                continue;
            }
            specs.insert(
                format!("outage:host{h}"),
                AlertSpec {
                    kind: IncidentKind::Outage,
                    subject: format!("host{h}"),
                    severity: Severity::Warn,
                    magnitude: magnitude(&[h]),
                    blame: Blame {
                        hosts: vec![h],
                        rack: Some(r),
                        domain: Some(topo.domain_of(h)),
                        ..Blame::default()
                    },
                },
            );
        }
    }

    /// The retry-storm detector: the derivative of the fleet's
    /// cumulative retry counters.
    fn fold_retry(&mut self, t: f64, specs: &mut BTreeMap<String, AlertSpec>) {
        let c = &self.cfg.retry_storm;
        let totals: Vec<(String, f64)> = self
            .snapshot
            .range("retries/".to_string()..)
            .take_while(|(name, _)| name.starts_with("retries/"))
            .map(|(name, &v)| (name["retries/".len()..].to_string(), v))
            .collect();
        let dt = self.last_stamp.map(|p| t - p).unwrap_or(0.0);
        let mut total_delta = 0.0;
        let mut worst: Option<(String, f64)> = None;
        for (tenant, cur) in &totals {
            let delta = cur - self.retry_prev.get(tenant).copied().unwrap_or(0.0);
            total_delta += delta;
            if worst.as_ref().is_none_or(|(_, w)| delta > *w) {
                worst = Some((tenant.clone(), delta));
            }
            self.retry_prev.insert(tenant.clone(), *cur);
        }
        let rate = if dt > 0.0 { total_delta / dt } else { 0.0 };
        self.retry_sm
            .step(rate >= c.rate_per_ms, c.confirm_folds, c.clear_folds);
        if self.retry_sm.on {
            let severity = if rate >= c.page_multiple * c.rate_per_ms {
                Severity::Page
            } else {
                Severity::Warn
            };
            specs.insert(
                "retry-storm".to_string(),
                AlertSpec {
                    kind: IncidentKind::RetryStorm,
                    subject: "fleet".to_string(),
                    severity,
                    magnitude: rate,
                    blame: Blame {
                        tenant: worst.filter(|(_, d)| *d > 0.0).map(|(n, _)| n),
                        ..Blame::default()
                    },
                },
            );
        }
    }

    /// Reconcile this fold's desired alert surface against the active
    /// incident set: open, resolve (folding finer incidents into newly
    /// opened coarser ones), auto-ack, and track peaks.
    fn reconcile(&mut self, t: f64, specs: BTreeMap<String, AlertSpec>) {
        for (key, spec) in &specs {
            if !self.active.contains_key(key) {
                let id = self.incidents.len() as u64 + 1;
                self.incidents.push(Incident {
                    id,
                    kind: spec.kind,
                    subject: spec.subject.clone(),
                    severity: spec.severity,
                    opened_ms: t,
                    acked_ms: None,
                    resolved_ms: None,
                    peak: spec.magnitude,
                    blame: spec.blame.clone(),
                });
                self.active.insert(
                    key.clone(),
                    ActiveRec {
                        idx: self.incidents.len() - 1,
                        folds: 0,
                    },
                );
            }
        }
        // A resolving incident may have been absorbed by a coarser one
        // opened this very fold (host outage → its rack or domain).
        let covering = |key: &str| -> Option<u64> {
            let topo = self.cfg.topology?;
            let coarser = if let Some(h) = key.strip_prefix("outage:host") {
                let h: usize = h.parse().ok()?;
                let r = topo.rack_of(h);
                [
                    format!("outage:rack{r}"),
                    format!("outage:domain{}", topo.domain_of(h)),
                ]
                .into_iter()
                .find(|k| specs.contains_key(k))?
            } else if let Some(r) = key.strip_prefix("outage:rack") {
                let r: usize = r.parse().ok()?;
                let k = format!("outage:domain{}", r / topo.racks_per_domain);
                specs.contains_key(&k).then_some(k)?
            } else {
                return None;
            };
            self.active
                .get(&coarser)
                .map(|rec| self.incidents[rec.idx].id)
        };
        let resolved: Vec<(String, Option<u64>)> = self
            .active
            .keys()
            .filter(|k| !specs.contains_key(*k))
            .map(|k| (k.clone(), covering(k)))
            .collect();
        for (key, merged) in resolved {
            let rec = self.active.remove(&key).expect("key from active");
            let inc = &mut self.incidents[rec.idx];
            inc.resolved_ms = Some(t);
            inc.blame.merged_into = merged;
        }
        for (key, spec) in &specs {
            let rec = self.active.get_mut(key).expect("opened above");
            rec.folds += 1;
            let inc = &mut self.incidents[rec.idx];
            if inc.acked_ms.is_none() && rec.folds >= self.cfg.ack_folds {
                inc.acked_ms = Some(t);
            }
            inc.peak = inc.peak.max(spec.magnitude);
            inc.severity = inc.severity.max(spec.severity);
        }
    }
}

impl MonitorSink for FleetMonitor {
    fn due(&self, now_ms: f64) -> bool {
        now_ms >= self.next_ms
    }

    fn advance(&mut self, now_ms: f64) -> f64 {
        // Bit-for-bit the MetricsRecorder cadence: the last elapsed
        // point, so both instruments fold at identical stamps when on
        // the same interval.
        let k = ((now_ms - self.next_ms) / self.interval_ms).floor();
        let t = self.next_ms + k * self.interval_ms;
        self.next_ms = t + self.interval_ms;
        t
    }

    fn record(&mut self, series: &str, value: f64) {
        self.snapshot.insert(series.to_string(), value);
    }

    fn close_sample(&mut self, t_ms: f64) {
        let mut specs: BTreeMap<String, AlertSpec> = BTreeMap::new();
        let arrival_deltas = self.fold_arrivals();
        self.fold_burn(&mut specs);
        self.fold_straggler(&mut specs);
        self.fold_outage(&arrival_deltas, &mut specs);
        self.fold_retry(t_ms, &mut specs);
        self.reconcile(t_ms, specs);
        // History row: per-host busy delta per simulated ms from the
        // `busy/host{h}` gauges (the fleet heatmap's raw material;
        // detection never reads it back).
        let busy = self.indexed_gauges("busy/host");
        if let Some(prev_t) = self.last_stamp {
            let dt = t_ms - prev_t;
            if dt > 0.0 {
                let deltas: Vec<(usize, f64)> = busy
                    .iter()
                    .map(|&(h, cur)| {
                        let prev = self.busy_prev.get(&h).copied().unwrap_or(0.0);
                        (h, (cur - prev) / dt)
                    })
                    .collect();
                if self.history.len() == self.cfg.history_cap {
                    self.history.pop_front();
                    self.history_dropped += 1;
                }
                self.history.push_back((t_ms, deltas));
            }
        }
        self.busy_prev = busy.into_iter().collect();
        self.tenant_acc.clear();
        self.die_acc.clear();
        self.folds += 1;
        self.last_stamp = Some(t_ms);
    }

    fn observe_latency(&mut self, tenant: &str, latency_ms: f64, slo_ms: f64) {
        let acc = self.tenant_acc.entry(tenant.to_string()).or_insert((0, 0));
        acc.0 += 1;
        if latency_ms > slo_ms {
            acc.1 += 1;
        }
    }

    fn observe_service(
        &mut self,
        tenant: &str,
        host: usize,
        die: usize,
        service_ms: f64,
        completions: usize,
    ) {
        let acc = self
            .die_acc
            .entry((tenant.to_string(), host, die))
            .or_insert((0.0, 0));
        // One add per completion, matching the per-record adds an
        // offline replay performs — f64 addition is order-sensitive,
        // and per-(tenant,host,die) the two streams must agree bitwise.
        for _ in 0..completions {
            acc.0 += service_ms;
        }
        acc.1 += completions as u64;
    }

    fn finish(&mut self) {
        // Observations after the last fold stamp are intentionally
        // left unfolded: the streaming monitor never closes a partial
        // fold, and the offline replay attributes the same trailing
        // records past the last stamp, so both paths discard exactly
        // the same tail.
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_cluster::FleetTopology;

    #[test]
    fn alert_sm_confirms_and_clears_with_hysteresis() {
        let mut sm = AlertSm::default();
        sm.step(true, 2, 2);
        assert!(!sm.on, "one flagged fold is below confirm");
        sm.step(true, 2, 2);
        assert!(sm.on, "second consecutive flagged fold opens");
        sm.step(false, 2, 2);
        assert!(sm.on, "one clean fold is below clear");
        sm.step(true, 2, 2);
        sm.step(false, 2, 2);
        assert!(sm.on, "clear run restarts after a flagged fold");
        sm.step(false, 2, 2);
        assert!(!sm.on, "two consecutive clean folds resolve");
    }

    fn drive(mon: &mut FleetMonitor, t: f64, gauges: &[(&str, f64)]) {
        for &(name, v) in gauges {
            mon.record(name, v);
        }
        mon.close_sample(t);
    }

    #[test]
    fn burn_opens_on_both_windows_and_resolves_on_fast() {
        let mut cfg = MonitorConfig::with_interval(1.0);
        cfg.burn.min_served = 8;
        let mut mon = FleetMonitor::new(cfg);
        // 16 folds of clean traffic, then sustained 100% misses.
        for fold in 0..40u64 {
            for _ in 0..4 {
                let lat = if fold >= 16 { 10.0 } else { 1.0 };
                mon.observe_latency("A", lat, 7.0);
            }
            mon.close_sample(fold as f64);
        }
        let report = mon.report();
        assert_eq!(report.incidents.len(), 1);
        let inc = &report.incidents[0];
        assert_eq!(inc.kind, IncidentKind::Burn);
        assert_eq!(inc.subject, "A");
        assert_eq!(inc.severity, Severity::Page);
        assert!(inc.open_at_end());
        assert!(inc.acked_ms.is_some(), "sustained burn auto-acks");
        assert!(inc.peak >= 6.0);
        // Recovery resolves after clear_folds cool fast windows.
        for fold in 40..60u64 {
            for _ in 0..4 {
                mon.observe_latency("A", 1.0, 7.0);
            }
            mon.close_sample(fold as f64);
        }
        assert!(mon.report().incidents[0].resolved_ms.is_some());
    }

    #[test]
    fn dark_backlog_under_arrivals_opens_outage_and_folds_to_rack() {
        let cfg = MonitorConfig::with_interval(1.0).with_topology(FleetTopology {
            hosts_per_rack: 2,
            racks_per_domain: 2,
        });
        let mut mon = FleetMonitor::new(cfg);
        // Four hosts; tenant A placed on hosts 0-1, B on 2-3, both
        // arriving at 8 requests per fold.
        let mut t = 0.0;
        let mut arrived = 0.0f64;
        let mut step = |mon: &mut FleetMonitor, backlog: [f64; 4], t: &mut f64| {
            arrived += 8.0;
            let gauges: Vec<(String, f64)> = (0..4)
                .map(|h| (format!("backlog/host{h}"), backlog[h]))
                .chain((0..4).map(|h| {
                    let tenant = if h < 2 { "A" } else { "B" };
                    (format!("placed/{tenant}/host{h}"), 1.0)
                }))
                .chain([
                    ("arrived/A".to_string(), arrived),
                    ("arrived/B".to_string(), arrived),
                ])
                .collect();
            for (name, v) in &gauges {
                mon.record(name, *v);
            }
            mon.close_sample(*t);
            *t += 1.0;
        };
        // Warm up: everyone holds a backlog.
        for _ in 0..3 {
            step(&mut mon, [2.0; 4], &mut t);
        }
        // Rack 0 (hosts 0,1) goes dark while arrivals keep flowing.
        for _ in 0..6 {
            step(&mut mon, [0.0, 0.0, 2.0, 2.0], &mut t);
        }
        let report = mon.report();
        let racks: Vec<&Incident> = report
            .incidents
            .iter()
            .filter(|i| i.subject == "rack0")
            .collect();
        assert_eq!(racks.len(), 1, "one rack-level incident: {report:?}");
        assert_eq!(racks[0].severity, Severity::Page);
        assert_eq!(racks[0].blame.rack, Some(0));
        assert_eq!(racks[0].blame.hosts, vec![0, 1]);
        // Host-level incidents (if any opened before the rack folded)
        // must have merged into the rack incident.
        for i in &report.incidents {
            if i.subject.starts_with("host") {
                assert_eq!(i.blame.merged_into, Some(racks[0].id));
            }
        }
        // Recovery: backlogs refill, incident resolves next fold.
        for _ in 0..3 {
            step(&mut mon, [2.0; 4], &mut t);
        }
        assert!(mon.report().incidents.iter().all(|i| !i.open_at_end()));
    }

    #[test]
    fn idle_host_without_arrivals_never_alerts() {
        let mut mon = FleetMonitor::new(MonitorConfig::with_interval(1.0));
        // Backlog drains to empty, but its tenant's arrivals stopped —
        // the end-of-run drain pattern.
        for fold in 0..12u64 {
            let backlog = if fold < 2 { 2.0 } else { 0.0 };
            drive(
                &mut mon,
                fold as f64,
                &[
                    ("backlog/host0", backlog),
                    ("placed/A/host0", 1.0),
                    ("arrived/A", 16.0),
                ],
            );
        }
        assert!(mon.report().incidents.is_empty());
    }

    #[test]
    fn empty_host_without_placement_never_alerts() {
        let mut mon = FleetMonitor::new(MonitorConfig::with_interval(1.0));
        // Fleet arrivals flow, but nothing is placed on the empty host
        // (its one replica retired), so no demand reaches it.
        let mut arrived = 0.0;
        for fold in 0..12u64 {
            arrived += 8.0;
            let backlog = if fold < 2 { 2.0 } else { 0.0 };
            drive(
                &mut mon,
                fold as f64,
                &[
                    ("backlog/host0", backlog),
                    ("placed/A/host0", 0.0),
                    ("arrived/A", arrived),
                ],
            );
        }
        assert!(mon.report().incidents.is_empty());
    }

    #[test]
    fn straggler_flags_slow_die_against_tenant_peers() {
        let mut mon = FleetMonitor::new(MonitorConfig::with_interval(1.0));
        for fold in 0..6u64 {
            // Five healthy dies at ~1ms, one at 9ms.
            for die in 0..5usize {
                mon.observe_service("A", die / 2, die % 2, 1.0 + die as f64 * 0.01, 4);
            }
            mon.observe_service("A", 2, 1, 9.0, 4);
            mon.close_sample(fold as f64);
        }
        let report = mon.report();
        assert_eq!(report.incidents.len(), 1, "{report:?}");
        let inc = &report.incidents[0];
        assert_eq!(inc.kind, IncidentKind::Straggler);
        assert_eq!(inc.subject, "host2/die1");
        assert_eq!(inc.blame.tenant.as_deref(), Some("A"));
        assert!(inc.peak >= 4.0);
    }

    #[test]
    fn retry_storm_pages_when_rate_spikes() {
        let mut cfg = MonitorConfig::with_interval(1.0);
        cfg.retry_storm.rate_per_ms = 100.0;
        let mut mon = FleetMonitor::new(cfg);
        let mut total = 0.0;
        for fold in 0..10u64 {
            // 500 retries/ms from fold 3 on — 5x threshold, a page.
            if fold >= 3 {
                total += 500.0;
            }
            drive(&mut mon, fold as f64, &[("retries/blind", total)]);
        }
        let report = mon.report();
        assert_eq!(report.incidents.len(), 1);
        let inc = &report.incidents[0];
        assert_eq!(inc.kind, IncidentKind::RetryStorm);
        assert_eq!(inc.severity, Severity::Page);
        assert_eq!(inc.blame.tenant.as_deref(), Some("blind"));
        assert!(inc.peak >= 500.0 - 1e-9);
    }

    #[test]
    fn cadence_matches_metrics_recorder_bitwise() {
        use tpu_telemetry::{MetricsConfig, MetricsRecorder};
        let mut m = MetricsRecorder::new(&MetricsConfig {
            interval_ms: 0.05,
            ring_cap: 4096,
        });
        let mut mon = FleetMonitor::new(MonitorConfig::with_interval(0.05));
        let mut now = 0.0;
        for i in 0..1000 {
            now += 0.001 + (i % 7) as f64 * 0.013;
            assert_eq!(m.due(now), MonitorSink::due(&mon, now));
            if m.due(now) {
                let tm = m.advance(now);
                let tt = MonitorSink::advance(&mut mon, now);
                assert_eq!(tm.to_bits(), tt.to_bits());
            }
        }
    }
}
